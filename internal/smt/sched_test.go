package smt

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/isa"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

func TestSchedConfigValidate(t *testing.T) {
	base := Config{
		Threads: []workload.Config{workload.Database(1)},
		Measure: 100,
	}
	cases := []struct {
		name string
		cfg  SchedConfig
		ok   bool
	}{
		{"default policy", SchedConfig{Config: base}, true},
		{"round-robin", SchedConfig{Config: base, Policy: PolicyRoundRobin}, true},
		{"icount", SchedConfig{Config: base, Policy: PolicyICount}, true},
		{"mlp-aware", SchedConfig{Config: base, Policy: PolicyMLPAware}, true},
		{"explicit knobs", SchedConfig{Config: base, Policy: PolicyMLPAware, EpochLatency: 256, FairFloor: 0.2}, true},
		{"unknown policy", SchedConfig{Config: base, Policy: "fifo"}, false},
		{"zero threads", SchedConfig{Config: Config{Measure: 100}}, false},
		{"negative granule", SchedConfig{Config: Config{Threads: base.Threads, Measure: 100, Granule: -1}}, false},
		{"negative measure", SchedConfig{Config: Config{Threads: base.Threads, Measure: -1}}, false},
		{"negative latency", SchedConfig{Config: base, EpochLatency: -1}, false},
		{"floor at one", SchedConfig{Config: base, FairFloor: 1}, false},
		{"negative floor", SchedConfig{Config: base, FairFloor: -0.1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

// synthTraces builds K random epoch traces mixing plain fetch epochs,
// miss-burst epochs and zero-fetch drain epochs.
func synthTraces(rng *rand.Rand, k int) [][]EpochRec {
	traces := make([][]EpochRec, k)
	for t := range traces {
		n := 5 + rng.Intn(120)
		tr := make([]EpochRec, n)
		for i := range tr {
			e := EpochRec{Unretired: int64(rng.Intn(64))}
			if rng.Intn(8) > 0 {
				e.Insts = int64(1 + rng.Intn(300))
			}
			if rng.Intn(3) > 0 {
				e.Accesses = uint64(1 + rng.Intn(8))
			}
			tr[i] = e
		}
		traces[t] = tr
	}
	return traces
}

// TestSchedBracketingRandom is the core property test: for random
// traces, thread counts, granules and latencies, every policy's
// aggregate MLP lands inside the timing-free [CombinedLower,
// CombinedUpper] bracket. The bracket holds by construction of the
// busy-interval union (see the package comment in sched.go); this pins
// it against scheduler refactors.
func TestSchedBracketingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	granules := []int64{1, 16, 64, 333}
	latencies := []int64{64, 512}
	const eps = 1e-9
	for iter := 0; iter < 40; iter++ {
		k := 1 + rng.Intn(4)
		traces := synthTraces(rng, k)
		g := granules[rng.Intn(len(granules))]
		lat := latencies[rng.Intn(len(latencies))]
		for _, pol := range PolicyNames() {
			r := Schedule(traces, pol, g, lat, 0)
			if r.AggMLP < r.CombinedLower-eps || r.AggMLP > r.CombinedUpper+eps {
				t.Fatalf("iter %d k=%d g=%d lat=%d %s: AggMLP %.6f outside [%.6f, %.6f]",
					iter, k, g, lat, pol, r.AggMLP, r.CombinedLower, r.CombinedUpper)
			}
			if r.Bursts > 0 && r.AggMLP <= 0 {
				t.Fatalf("iter %d %s: %d bursts but zero AggMLP", iter, pol, r.Bursts)
			}
			if r.MinShare > r.MaxShare || r.MinShare < 0 || r.MaxShare > 1+eps {
				t.Fatalf("iter %d %s: shares [%.4f, %.4f] implausible", iter, pol, r.MinShare, r.MaxShare)
			}
			var sum float64
			for _, sh := range r.Shares {
				sum += sh
			}
			if sum > 1+eps {
				t.Fatalf("iter %d %s: shares sum to %.6f > 1", iter, pol, sum)
			}
		}
	}
}

// TestRoundRobinK1BitIdentity pins the degenerate case: with one
// thread there is nothing to schedule, so a round-robin run's
// per-thread engine result is bit-identical to a solo core.Engine run
// over the same annotated stream, and the aggregate MLP collapses onto
// both bounds. Randomized over seeds and granules (fixed source, so
// failures reproduce).
func TestRoundRobinK1BitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	granules := []int{1, 16, 64, 200}
	for iter := 0; iter < 4; iter++ {
		seed := int64(1 + rng.Intn(1000))
		granule := granules[rng.Intn(len(granules))]
		cfg := SchedConfig{
			Config: Config{
				Threads:   []workload.Config{workload.Database(seed)},
				Granule:   granule,
				Processor: core.Default(),
				Warmup:    60_000,
				Measure:   200_000,
			},
			Policy: PolicyRoundRobin,
		}
		res := RunScheduled(cfg)

		a := annotate.New(workload.MustNew(cfg.Threads[0]), annotate.Config{Hierarchy: cfg.Hierarchy})
		a.Warm(cfg.Warmup)
		p := cfg.Processor
		p.MaxInstructions = cfg.Measure
		solo := core.NewEngine(a, p).Run()

		if !reflect.DeepEqual(res.PerThread[0], solo) {
			t.Fatalf("seed %d granule %d: scheduled K=1 result diverged from solo engine:\n%+v\nvs\n%+v",
				seed, granule, res.PerThread[0], solo)
		}
		if res.AggMLP != solo.MLP() {
			t.Fatalf("seed %d granule %d: AggMLP %.9f != solo MLP %.9f", seed, granule, res.AggMLP, solo.MLP())
		}
		if res.CombinedLower != res.AggMLP || res.CombinedUpper != res.AggMLP {
			t.Fatalf("seed %d granule %d: K=1 bounds [%.9f, %.9f] should both equal %.9f",
				seed, granule, res.CombinedLower, res.CombinedUpper, res.AggMLP)
		}
		if res.MinShare != 1 || res.MaxShare != 1 {
			t.Fatalf("seed %d granule %d: K=1 shares [%.4f, %.4f], want [1, 1]", seed, granule, res.MinShare, res.MaxShare)
		}
	}
}

// TestScheduledRealTraceBracketing checks the invariants on real
// workload traces: bracketing for every policy, identical per-thread
// engine results across policies (the schedule decides when epochs run,
// not what happens inside them), and bounds matching the unscheduled
// Run definition.
func TestScheduledRealTraceBracketing(t *testing.T) {
	cfg := SchedConfig{
		Config: Config{
			Threads:   []workload.Config{workload.Database(5), workload.Web(5)},
			Processor: core.Default(),
			Warmup:    50_000,
			Measure:   150_000,
		},
	}
	results := RunScheduledPolicies(cfg, PolicyNames())
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	const eps = 1e-9
	for _, r := range results {
		if r.AggMLP < r.CombinedLower-eps || r.AggMLP > r.CombinedUpper+eps {
			t.Errorf("%s: AggMLP %.4f outside [%.4f, %.4f]", r.Policy, r.AggMLP, r.CombinedLower, r.CombinedUpper)
		}
		if r.Bursts == 0 {
			t.Errorf("%s: no bursts issued on a real trace", r.Policy)
		}
		if !reflect.DeepEqual(r.PerThread, results[0].PerThread) {
			t.Errorf("%s: per-thread results differ across policies", r.Policy)
		}
		if r.CombinedLower != results[0].CombinedLower || r.CombinedUpper != results[0].CombinedUpper {
			t.Errorf("%s: bounds differ across policies", r.Policy)
		}
	}
	// Two active threads open a bound gap, and K>1 overlap means the
	// machine should land strictly above the no-overlap floor for at
	// least one policy (mlp-aware by design).
	if results[0].CombinedUpper <= results[0].CombinedLower {
		t.Error("two active threads should open a bound gap")
	}
}

func TestScheduledZeroMeasure(t *testing.T) {
	cfg := SchedConfig{
		Config: Config{
			Threads:   []workload.Config{workload.Database(1), workload.Web(1)},
			Processor: core.Default(),
		},
		Policy: PolicyICount,
	}
	r := RunScheduled(cfg)
	if len(r.PerThread) != 2 || len(r.Shares) != 2 {
		t.Fatalf("zero-measure slices missized: %+v", r)
	}
	if r.AggMLP != 0 || r.Bursts != 0 || r.Policy != PolicyICount {
		t.Fatalf("zero-measure result not empty: %+v", r)
	}
}

// TestSchedDeterminism pins that two runs of the same scheduled config
// produce identical results — the scheduler state is all slices and
// deterministic tie-breaks, with no map-iteration-order leakage.
func TestSchedDeterminism(t *testing.T) {
	cfg := SchedConfig{
		Config: Config{
			Threads:   []workload.Config{workload.Web(9), workload.JBB(9)},
			Processor: core.Default(),
			Warmup:    40_000,
			Measure:   120_000,
		},
		Policy: PolicyMLPAware,
	}
	a, b := RunScheduled(cfg), RunScheduled(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scheduled run not deterministic:\n%+v\nvs\n%+v", a, b)
	}

	rng := rand.New(rand.NewSource(3))
	traces := synthTraces(rng, 3)
	for _, pol := range PolicyNames() {
		x := Schedule(traces, pol, 64, 512, 0)
		y := Schedule(traces, pol, 64, 512, 0)
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("%s: pure schedule replay not deterministic", pol)
		}
	}
}

// TestMLPAwareFairnessFloor is the fairness regression test: at Quick
// scale, on a homogeneous four-thread database mix, the mlp-aware
// policy's anti-starvation floor (default 0.5/K = 0.125) keeps every
// thread's fetch share at or above 90% of the floor.
func TestMLPAwareFairnessFloor(t *testing.T) {
	threads := make([]workload.Config, 4)
	for i := range threads {
		threads[i] = workload.Database(1).WithSeed(1 + int64(i)*101)
	}
	cfg := SchedConfig{
		Config: Config{
			Threads:   threads,
			Processor: core.Default(),
			Warmup:    50_000,
			Measure:   150_000,
		},
		Policy: PolicyMLPAware,
	}
	r := RunScheduled(cfg)
	floor := 0.5 / float64(len(threads))
	if r.MinShare < floor*0.9 {
		t.Fatalf("mlp-aware starved a thread: min share %.4f below 90%% of floor %.4f (shares %v, %d floor picks)",
			r.MinShare, floor, r.Shares, r.FloorPicks)
	}
}

// TestPolicyPicks unit-tests each policy's ranking on hand-built ready
// sets.
func TestPolicyPicks(t *testing.T) {
	rr, _ := NewPolicy(PolicyRoundRobin, 4, 0)
	// First grant goes to the lowest index, then rotation continues from
	// the last grant even when that thread has left the ready set.
	ready := []ThreadState{{Thread: 2}, {Thread: 0}, {Thread: 3}}
	if got := ready[rr.Pick(ready)].Thread; got != 0 {
		t.Fatalf("round-robin first pick thread %d, want 0", got)
	}
	ready = []ThreadState{{Thread: 3}, {Thread: 2}}
	if got := ready[rr.Pick(ready)].Thread; got != 2 {
		t.Fatalf("round-robin after 0 picked %d, want 2", got)
	}

	ic, _ := NewPolicy(PolicyICount, 4, 0)
	ready = []ThreadState{
		{Thread: 0, Unretired: 40},
		{Thread: 1, Unretired: 10, Fetched: 9},
		{Thread: 2, Unretired: 10, Fetched: 5},
	}
	if got := ready[ic.Pick(ready)].Thread; got != 2 {
		t.Fatalf("icount picked %d, want 2 (fewest unretired, least fetched)", got)
	}

	ma, _ := NewPolicy(PolicyMLPAware, 2, 0.25)
	// Un-issued epochs beat issued ones, densest first.
	ready = []ThreadState{
		{Thread: 0, Issued: true, Share: 0.5, MissDensity: 0.9},
		{Thread: 1, Issued: false, Share: 0.5, MissDensity: 0.1},
	}
	if got := ready[ma.Pick(ready)].Thread; got != 1 {
		t.Fatalf("mlp-aware picked %d, want the un-issued thread 1", got)
	}
	// The starvation floor overrides everything.
	ready = []ThreadState{
		{Thread: 0, Issued: false, Share: 0.8, MissDensity: 0.9},
		{Thread: 1, Issued: true, Share: 0.2},
	}
	if got := ready[ma.Pick(ready)].Thread; got != 1 {
		t.Fatalf("mlp-aware picked %d, want the starved thread 1", got)
	}
	// All mid-flight: the epoch closest to its boundary runs.
	ready = []ThreadState{
		{Thread: 0, Issued: true, Share: 0.5, EpochLeft: 100},
		{Thread: 1, Issued: true, Share: 0.5, EpochLeft: 7},
	}
	if got := ready[ma.Pick(ready)].Thread; got != 1 {
		t.Fatalf("mlp-aware picked %d, want thread 1 (closest to epoch boundary)", got)
	}

	if _, err := NewPolicy("lottery", 2, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// sliceSource is a finite trace for the interleaver exhaustion test.
type sliceSource struct {
	insts []isa.Inst
	i     int
}

func (s *sliceSource) Next() (isa.Inst, bool) {
	if s.i >= len(s.insts) {
		return isa.Inst{}, false
	}
	s.i++
	return s.insts[s.i-1], true
}

// TestInterleaverUnevenMix pins the exhaustion bugfix: when one source
// dries up mid-granule the remaining threads keep their budget — every
// instruction of every thread is delivered, in per-thread order, with
// iv.last attributing each one correctly. (The pre-fix interleaver
// ended the whole pass at the first exhausted source.)
func TestInterleaverUnevenMix(t *testing.T) {
	lengths := []int{10, 3, 7}
	srcs := make([]trace.Source, len(lengths))
	total := 0
	for th, n := range lengths {
		insts := make([]isa.Inst, n)
		for i := range insts {
			insts[i] = isa.Inst{PC: uint64(th*1000 + i)}
		}
		srcs[th] = &sliceSource{insts: insts}
		total += n
	}
	// Granule 4 does not divide 3 or 7: both short threads die
	// mid-granule.
	iv := &interleaver{srcs: srcs, granule: 4, cur: -1}
	counts := make([]int, len(lengths))
	nextPC := []uint64{0, 1000, 2000}
	got := 0
	for {
		in, ok := iv.Next()
		if !ok {
			break
		}
		if in.PC != nextPC[iv.last] {
			t.Fatalf("thread %d out of order: PC %d, want %d", iv.last, in.PC, nextPC[iv.last])
		}
		nextPC[iv.last]++
		counts[iv.last]++
		got++
		if got > total {
			t.Fatal("interleaver yielded more instructions than the sources hold")
		}
	}
	for th, n := range lengths {
		if counts[th] != n {
			t.Fatalf("thread %d delivered %d of %d instructions (counts %v)", th, counts[th], n, counts)
		}
	}
}

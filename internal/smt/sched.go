package smt

// Scheduled interleaving: from timing-free bounds to fetch policies.
//
// Run reports how much MLP multithreading *could* add as a
// [CombinedLower, CombinedUpper] bracket. The scheduled engine here
// picks a point inside that bracket by actually arbitrating the shared
// fetch unit: K per-thread engines step epoch-at-a-time (core.Stepper,
// the gang machinery's cursor exported for per-thread streams), and a
// fetch Policy decides which thread's epoch advances whenever the fetch
// unit frees up.
//
// The timing model stays deliberately simple so the bracket holds by
// construction. Time is counted in fetch units (one instruction slot
// each, the fetch unit is serial). A thread's epoch costs its fetched
// instruction count in fetch units; an epoch with off-chip accesses
// issues its whole miss burst at the epoch's first fetch grant, the
// burst stays in flight for EpochLatency fetch units, and the thread's
// next epoch cannot start before the burst resolves. Machine busy time
// is the union of all in-flight miss windows, and
//
//	AggMLP = total accesses / (busy time / EpochLatency).
//
// Each burst contributes a window of exactly EpochLatency, so the union
// is at most (sum of per-thread epoch counts) windows long — AggMLP >=
// CombinedLower — and one thread's windows never overlap each other, so
// the union is at least the largest per-thread epoch count long —
// AggMLP <= CombinedUpper. Any policy, any granule: the bracket holds.

import (
	"fmt"
	"slices"

	"mlpsim/internal/annotate"
	"mlpsim/internal/core"
	"mlpsim/internal/trace"
	"mlpsim/internal/workload"
)

// Policy names accepted by SchedConfig.Policy.
const (
	// PolicyRoundRobin grants fetch granules cyclically in thread order —
	// the scheduled twin of the fixed-granule interleaver.
	PolicyRoundRobin = "round-robin"
	// PolicyICount grants the thread with the fewest unretired
	// instructions (ICOUNT-style fetch).
	PolicyICount = "icount"
	// PolicyMLPAware deprioritizes a thread once its epoch's miss burst
	// has issued, fetching threads that can still start new bursts so
	// outstanding misses overlap; the deprioritized thread resumes at its
	// epoch boundary, backed by an anti-starvation share floor.
	PolicyMLPAware = "mlp-aware"
)

// PolicyNames lists every fetch policy in presentation order.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyICount, PolicyMLPAware}
}

// SchedConfig parameterizes one scheduled SMT simulation.
type SchedConfig struct {
	Config
	// Policy selects the fetch policy (default PolicyRoundRobin).
	Policy string
	// EpochLatency is the modeled off-chip miss latency in fetch units
	// (default 512: the paper's memory latency in processor cycles, one
	// fetch slot per cycle).
	EpochLatency int64
	// FairFloor is PolicyMLPAware's anti-starvation fetch-share floor in
	// [0, 1); 0 means the default 0.5/K.
	FairFloor float64
}

// Validate reports configuration errors.
func (c *SchedConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case "", PolicyRoundRobin, PolicyICount, PolicyMLPAware:
	default:
		return fmt.Errorf("smt: unknown policy %q", c.Policy)
	}
	if c.EpochLatency < 0 {
		return fmt.Errorf("smt: negative epoch latency %d", c.EpochLatency)
	}
	if c.FairFloor < 0 || c.FairFloor >= 1 {
		return fmt.Errorf("smt: fair floor %v outside [0, 1)", c.FairFloor)
	}
	return nil
}

// EpochRec is one epoch of a thread's schedule trace: the fetch units
// the epoch consumed, the off-chip miss burst it issued, and the
// thread's window occupancy at the epoch boundary. The records are a
// pure function of the thread's annotated stream — the policy decides
// when epochs run, never what happens inside them — so one trace
// pre-pass serves every policy.
type EpochRec struct {
	Insts     int64
	Accesses  uint64
	Unretired int64
}

// ThreadState is the per-thread scheduler state a Policy ranks when the
// shared fetch unit frees up.
type ThreadState struct {
	// Thread is the thread index.
	Thread int
	// EpochLeft is the fetch units remaining in the thread's current
	// epoch (its outstanding epoch position).
	EpochLeft int64
	// Issued reports whether the current epoch's miss burst is already
	// out; InFlight is its size while the burst is still unresolved.
	Issued   bool
	InFlight int
	// Unretired approximates the thread's window occupancy: the last
	// epoch boundary's count plus the units fetched since.
	Unretired int64
	// Fetched is the thread's cumulative fetch units and Share its
	// fraction of all fetch units granted so far.
	Fetched int64
	Share   float64
	// MissDensity is the thread's historical off-chip accesses per fetch
	// unit — how likely granting it is to start new misses.
	MissDensity float64
}

// Policy arbitrates the shared fetch unit. Pick receives the non-empty
// ready set (threads able to fetch now) and returns an index into it.
// Implementations may keep state across picks but must be deterministic.
type Policy interface {
	Name() string
	Pick(ready []ThreadState) int
}

// NewPolicy builds the named policy for a K-thread machine; floor is
// PolicyMLPAware's share floor (0 = default 0.5/K). The empty name means
// PolicyRoundRobin.
func NewPolicy(name string, k int, floor float64) (Policy, error) {
	switch name {
	case "", PolicyRoundRobin:
		return &roundRobin{k: k, prev: -1}, nil
	case PolicyICount:
		return iCount{}, nil
	case PolicyMLPAware:
		if floor == 0 {
			floor = 0.5 / float64(k)
		}
		return &mlpAware{floor: floor}, nil
	}
	return nil, fmt.Errorf("smt: unknown policy %q", name)
}

// roundRobin cycles threads in index order from the last grant, exactly
// like the fixed-granule interleaver's rotation; stalled and finished
// threads are skipped.
type roundRobin struct {
	k    int
	prev int
}

func (p *roundRobin) Name() string { return PolicyRoundRobin }

func (p *roundRobin) Pick(ready []ThreadState) int {
	best, bestKey := 0, p.k
	for i, ts := range ready {
		key := ts.Thread - p.prev - 1
		if key < 0 {
			key += p.k
		}
		if key < bestKey {
			best, bestKey = i, key
		}
	}
	p.prev = ready[best].Thread
	return best
}

// iCount grants the thread with the fewest unretired instructions,
// tie-broken by least fetched, then lowest index.
type iCount struct{}

func (iCount) Name() string { return PolicyICount }

func (iCount) Pick(ready []ThreadState) int {
	best := 0
	for i := 1; i < len(ready); i++ {
		a, b := &ready[i], &ready[best]
		switch {
		case a.Unretired != b.Unretired:
			if a.Unretired < b.Unretired {
				best = i
			}
		case a.Fetched != b.Fetched:
			if a.Fetched < b.Fetched {
				best = i
			}
		case a.Thread < b.Thread:
			best = i
		}
	}
	return best
}

// mlpAware deprioritizes threads whose current epoch already issued its
// burst (fetching them cannot start new misses before their epoch
// boundary) and grants the un-issued thread with the highest miss
// density, so bursts from different threads overlap. Two overrides keep
// it from degenerating: a thread whose fetch share fell below the floor
// is granted unconditionally (anti-starvation), and when every ready
// epoch is mid-flight the one closest to its boundary runs, so the
// deprioritized thread resumes at the epoch boundary rather than
// parking.
type mlpAware struct {
	floor      float64
	floorPicks uint64
}

func (p *mlpAware) Name() string { return PolicyMLPAware }

func (p *mlpAware) Pick(ready []ThreadState) int {
	starved := -1
	for i := range ready {
		ts := &ready[i]
		if ts.Share >= p.floor {
			continue
		}
		if starved < 0 || ts.Share < ready[starved].Share ||
			(ts.Share == ready[starved].Share && ts.Thread < ready[starved].Thread) {
			starved = i
		}
	}
	if starved >= 0 {
		p.floorPicks++
		return starved
	}
	best := -1
	for i := range ready {
		ts := &ready[i]
		if ts.Issued {
			continue
		}
		if best < 0 || ts.MissDensity > ready[best].MissDensity ||
			(ts.MissDensity == ready[best].MissDensity && ts.Thread < ready[best].Thread) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	for i := 1; i < len(ready); i++ {
		a, b := &ready[i], &ready[best]
		if a.EpochLeft < b.EpochLeft || (a.EpochLeft == b.EpochLeft && a.Thread < b.Thread) {
			best = i
		}
	}
	return best
}

// SchedResult summarizes one scheduled SMT run.
type SchedResult struct {
	// Policy is the fetch policy that produced the result.
	Policy string
	// PerThread holds each thread's engine result under the shared
	// hierarchy; identical across policies by construction.
	PerThread []core.Result
	// CombinedLower and CombinedUpper are the timing-free bounds (same
	// definition as Result); AggMLP always lands between them.
	CombinedLower, CombinedUpper float64
	// MachineEpochs is the machine's busy time in units of EpochLatency:
	// the measure of the union of all in-flight miss windows.
	MachineEpochs float64
	// AggMLP is total off-chip accesses / MachineEpochs — the scheduled
	// machine's aggregate MLP.
	AggMLP float64
	// Shares are per-thread fetch shares sampled when the first thread
	// finishes its budget (afterwards the machine drains and shares
	// trivially converge); MinShare/MaxShare summarize them.
	Shares             []float64
	MinShare, MaxShare float64
	// Switches counts fetch grants that moved to a different thread,
	// Bursts the issued miss bursts, Overlapped the bursts issued while
	// another burst was still in flight, and FloorPicks the mlp-aware
	// anti-starvation overrides.
	Switches, Bursts, Overlapped, FloorPicks uint64
}

// schedThread is one thread's replay cursor over its epoch trace.
type schedThread struct {
	epochs []EpochRec
	cur    int   // current epoch index
	rem    int64 // fetch units left in the current epoch
	issued bool
	// issueAt is the current epoch's burst issue time (valid when issued).
	issueAt int64
	readyAt int64
	fetched int64
	// accIssued accumulates issued accesses (miss-density numerator);
	// lastU is the occupancy recorded at the last closed epoch boundary.
	accIssued uint64
	lastU     int64
	done      bool
}

// open closes the current epoch at time now and positions the thread at
// its next fetch-consuming epoch. Zero-fetch epochs (window-drain tails)
// issue their bursts in passing without consuming a fetch slot.
func (s *schedThread) open(now int64, m *schedMachine) {
	for {
		if s.issued {
			if end := s.issueAt + m.latency; end > now {
				now = end
			}
		}
		if s.cur >= 0 && s.cur < len(s.epochs) {
			s.lastU = s.epochs[s.cur].Unretired
		}
		s.cur++
		s.issued = false
		if s.cur >= len(s.epochs) {
			s.done = true
			return
		}
		e := &s.epochs[s.cur]
		if e.Insts > 0 {
			s.rem = e.Insts
			s.readyAt = now
			return
		}
		if e.Accesses > 0 {
			m.issue(s, now, e.Accesses)
		}
	}
}

// schedMachine is the shared-machine half of a schedule replay: the
// global clock, the recorded miss windows and the run counters.
type schedMachine struct {
	latency int64
	// starts records every burst's issue time; the busy-time union is
	// computed in one sweep at the end (bursts from different threads can
	// be recorded out of order when drain tails run ahead of the clock).
	starts []int64
	bursts uint64
}

// issue records thread s's current-epoch burst at time now.
func (m *schedMachine) issue(s *schedThread, now int64, acc uint64) {
	m.bursts++
	m.starts = append(m.starts, now)
	s.issued = true
	s.issueAt = now
	s.accIssued += acc
}

// Scheduler replays pre-computed per-thread epoch traces with reusable
// scratch — thread replay cursors, the ready set, the burst-start log
// and the fetch-share buffer. Construction (and the first replay at a
// given thread count) allocates; steady-state Schedule calls do not.
// The returned result's Shares slice aliases the Scheduler's buffer and
// is only valid until the next Schedule call; the package-level
// Schedule wrapper clones it for callers that keep results around.
type Scheduler struct {
	m       schedMachine
	threads []schedThread
	ready   []ThreadState
	shares  []float64
	rr      roundRobin
	ma      mlpAware
}

// NewScheduler returns an empty Scheduler; buffers grow on first use.
func NewScheduler() *Scheduler { return &Scheduler{} }

// policy returns the named policy backed by the Scheduler's cached
// instances, reset for a fresh k-thread replay. It panics on an unknown
// name, like Schedule always has.
func (sc *Scheduler) policy(name string, k int, floor float64) Policy {
	switch name {
	case "", PolicyRoundRobin:
		sc.rr = roundRobin{k: k, prev: -1}
		return &sc.rr
	case PolicyICount:
		return iCount{}
	case PolicyMLPAware:
		if floor == 0 {
			floor = 0.5 / float64(k)
		}
		sc.ma = mlpAware{floor: floor}
		return &sc.ma
	}
	panic(fmt.Errorf("smt: unknown policy %q", name))
}

// Schedule replays pre-computed per-thread epoch traces under the named
// policy — the pure scheduling core of RunScheduled, exported so
// benchmarks and property tests can drive it over synthetic traces.
// granule <= 0 and latency <= 0 select the defaults (64, 512); floor is
// the mlp-aware share floor (0 = default). It panics on an unknown
// policy name or an empty trace set. The result's Shares slice owns its
// memory (unlike Scheduler.Schedule's, which is reused).
func Schedule(traces [][]EpochRec, policy string, granule, latency int64, floor float64) SchedResult {
	res := NewScheduler().Schedule(traces, policy, granule, latency, floor)
	res.Shares = append([]float64(nil), res.Shares...)
	return res
}

// Schedule is the reusing form of the package-level Schedule: identical
// semantics and output, but all scratch comes from the Scheduler and
// the result's Shares alias its buffer (valid until the next call).
func (sc *Scheduler) Schedule(traces [][]EpochRec, policy string, granule, latency int64, floor float64) SchedResult {
	k := len(traces)
	if k == 0 {
		panic("smt: Schedule needs at least one thread trace")
	}
	if granule <= 0 {
		granule = 64
	}
	if latency <= 0 {
		latency = 512
	}
	pol := sc.policy(policy, k, floor)

	m := &sc.m
	m.latency = latency
	m.starts = m.starts[:0]
	m.bursts = 0
	if cap(sc.threads) < k {
		sc.threads = make([]schedThread, k)
	}
	threads := sc.threads[:k]
	running := 0
	for i := range threads {
		threads[i] = schedThread{epochs: traces[i], cur: -1}
		threads[i].open(0, m)
		if !threads[i].done {
			running++
		}
	}

	if cap(sc.shares) < k {
		sc.shares = make([]float64, k)
	}
	res := SchedResult{
		Policy: pol.Name(),
		Shares: sc.shares[:k],
	}
	for i := range res.Shares {
		res.Shares[i] = 0
	}
	var t int64
	var totalFetch int64
	last := -1
	sharesSampled := running < k // an empty trace finishes "first" at t=0
	ready := sc.ready[:0]

	for running > 0 {
		ready = ready[:0]
		nextReady := int64(-1)
		for i := range threads {
			s := &threads[i]
			if s.done {
				continue
			}
			if s.readyAt > t {
				if nextReady < 0 || s.readyAt < nextReady {
					nextReady = s.readyAt
				}
				continue
			}
			e := &s.epochs[s.cur]
			ts := ThreadState{
				Thread:    i,
				EpochLeft: s.rem,
				Issued:    s.issued,
				Unretired: s.lastU + (e.Insts - s.rem),
				Fetched:   s.fetched,
			}
			if s.issued && t < s.issueAt+latency {
				ts.InFlight = int(e.Accesses)
			}
			if totalFetch > 0 {
				ts.Share = float64(s.fetched) / float64(totalFetch)
			}
			if s.fetched > 0 {
				ts.MissDensity = float64(s.accIssued) / float64(s.fetched)
			}
			ready = append(ready, ts)
		}
		if len(ready) == 0 {
			t = nextReady
			continue
		}

		th := ready[pol.Pick(ready)].Thread
		if last >= 0 && th != last {
			res.Switches++
		}
		last = th
		s := &threads[th]
		if e := &s.epochs[s.cur]; !s.issued && e.Accesses > 0 {
			m.issue(s, t, e.Accesses)
		}
		q := granule
		if q > s.rem {
			q = s.rem
		}
		t += q
		s.rem -= q
		s.fetched += q
		totalFetch += q
		if s.rem == 0 {
			s.open(t, m)
			if s.done {
				running--
				if !sharesSampled {
					sharesSampled = true
					sampleShares(threads, totalFetch, &res)
				}
			}
		}
	}
	if !sharesSampled {
		sampleShares(threads, totalFetch, &res)
	}
	sc.ready = ready[:0] // keep any capacity append grew

	res.Bursts = m.bursts
	res.Overlapped, res.MachineEpochs = m.union()
	res.CombinedLower, res.CombinedUpper = traceBounds(traces)
	if res.MachineEpochs > 0 {
		var acc uint64
		for i := range threads {
			acc += threads[i].accIssued
		}
		res.AggMLP = float64(acc) / res.MachineEpochs
	}
	if ma, ok := pol.(*mlpAware); ok {
		res.FloorPicks = ma.floorPicks
	}
	return res
}

// sampleShares snapshots per-thread fetch shares into res.
func sampleShares(threads []schedThread, total int64, res *SchedResult) {
	for i := range threads {
		if total > 0 {
			res.Shares[i] = float64(threads[i].fetched) / float64(total)
		}
	}
	res.MinShare, res.MaxShare = 1, 0
	for _, sh := range res.Shares {
		if sh < res.MinShare {
			res.MinShare = sh
		}
		if sh > res.MaxShare {
			res.MaxShare = sh
		}
	}
	if len(res.Shares) == 0 || res.MinShare > res.MaxShare {
		res.MinShare, res.MaxShare = 0, 0
	}
}

// union computes the overlapped-burst count and the measure of the
// union of all miss windows in units of the latency. One sort keeps the
// result independent of issue-recording order.
func (m *schedMachine) union() (overlapped uint64, machineEpochs float64) {
	if len(m.starts) == 0 {
		return 0, 0
	}
	slices.Sort(m.starts)
	var busy, end int64
	end = m.starts[0] - 1 // before the first window
	for i, st := range m.starts {
		if i > 0 && st < end {
			overlapped++
		}
		lo := st
		if end > lo {
			lo = end
		}
		hi := st + m.latency
		if hi > lo {
			busy += hi - lo
		}
		if hi > end {
			end = hi
		}
	}
	return overlapped, float64(busy) / float64(m.latency)
}

// traceBounds computes the timing-free combined-MLP bounds directly
// from epoch traces: total accesses over the max (full overlap) and the
// sum (no overlap) of per-thread access-bearing epoch counts.
func traceBounds(traces [][]EpochRec) (lower, upper float64) {
	var totalAcc, sumEp, maxEp uint64
	for _, tr := range traces {
		var ep uint64
		for _, e := range tr {
			if e.Accesses > 0 {
				ep++
				totalAcc += e.Accesses
			}
		}
		sumEp += ep
		if ep > maxEp {
			maxEp = ep
		}
	}
	if sumEp > 0 {
		lower = float64(totalAcc) / float64(sumEp)
	}
	if maxEp > 0 {
		upper = float64(totalAcc) / float64(maxEp)
	}
	return lower, upper
}

// threadTrace is one thread's pre-pass product: its engine result under
// the shared hierarchy plus the epoch records the scheduler replays.
type threadTrace struct {
	res    core.Result
	epochs []EpochRec
}

// buildThreadTraces runs the per-thread shared-hierarchy passes exactly
// like Run (one deterministic interleaved annotation pass per thread,
// filtered to that thread) but steps each engine epoch-at-a-time to
// record the schedule trace. cfg must be validated with the granule
// already defaulted.
func buildThreadTraces(cfg Config) []threadTrace {
	k := len(cfg.Threads)
	out := make([]threadTrace, k)
	for t := 0; t < k; t++ {
		srcs := make([]trace.Source, k)
		for i := range srcs {
			srcs[i] = workload.MustNew(cfg.Threads[i])
		}
		iv := &interleaver{srcs: srcs, granule: cfg.Granule, cur: -1}
		ann := annotate.New(iv, annotate.Config{Hierarchy: cfg.Hierarchy})
		ann.Warm(cfg.Warmup * int64(k))
		filt := &threadFilter{iv: iv, ann: ann, thread: t, budget: cfg.Measure}
		p := cfg.Processor
		p.MaxInstructions = cfg.Measure
		st := core.NewStepper(filt, p)
		var prevFetch int64
		var prevAcc uint64
		tr := threadTrace{}
		for st.Step() {
			tr.epochs = append(tr.epochs, EpochRec{
				Insts:     st.Fetched() - prevFetch,
				Accesses:  st.Accesses() - prevAcc,
				Unretired: st.Unretired(),
			})
			prevFetch, prevAcc = st.Fetched(), st.Accesses()
		}
		tr.res = st.Finish()
		out[t] = tr
	}
	return out
}

// RunScheduled executes one scheduled SMT simulation. It panics on
// invalid configurations.
func RunScheduled(cfg SchedConfig) SchedResult {
	return RunScheduledPolicies(cfg, []string{cfg.Policy})[0]
}

// RunScheduledPolicies runs the same configuration under several
// policies, sharing one trace pre-pass: the per-thread epoch traces are
// schedule-independent, so the K expensive interleaved annotation
// passes run once and each policy is a cheap arithmetic replay. It
// panics on invalid configurations or policy names.
func RunScheduledPolicies(cfg SchedConfig, policies []string) []SchedResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Granule == 0 {
		cfg.Granule = 64
	}
	if cfg.EpochLatency == 0 {
		cfg.EpochLatency = 512
	}
	k := len(cfg.Threads)
	out := make([]SchedResult, len(policies))
	if cfg.Measure == 0 {
		for i, name := range policies {
			pol, err := NewPolicy(name, k, cfg.FairFloor)
			if err != nil {
				panic(err)
			}
			out[i] = SchedResult{
				Policy:    pol.Name(),
				PerThread: make([]core.Result, k),
				Shares:    make([]float64, k),
			}
		}
		return out
	}
	traces := buildThreadTraces(cfg.Config)
	raw := make([][]EpochRec, k)
	for t := range traces {
		raw[t] = traces[t].epochs
	}
	for i, name := range policies {
		r := Schedule(raw, name, int64(cfg.Granule), cfg.EpochLatency, cfg.FairFloor)
		r.PerThread = make([]core.Result, k)
		for t := range traces {
			r.PerThread[t] = traces[t].res
		}
		out[i] = r
	}
	return out
}

package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashRing is a consistent-hash ring over replica ids. Every replica in
// a fleet builds the same ring from the same member list (order
// independent), so all of them agree on which replica owns any given
// sweep point without talking to each other — ownership is a pure
// function of (fleet, key).
//
// Virtual nodes smooth the split: each id is hashed onto the ring
// ringVnodes times, and a key belongs to the id of the first ring point
// at or after the key's hash (wrapping). With one replica everything
// hashes to it and the daemon behaves exactly like solo mode.
type hashRing struct {
	nodes []ringNode // sorted by point
}

type ringNode struct {
	point uint32
	id    string
}

const ringVnodes = 64

func ringHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// newHashRing builds the ring for the given member ids; duplicates
// collapse. Returns nil for an empty fleet.
func newHashRing(ids []string) *hashRing {
	seen := make(map[string]bool, len(ids))
	r := &hashRing{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		for v := 0; v < ringVnodes; v++ {
			r.nodes = append(r.nodes, ringNode{point: ringHash(fmt.Sprintf("%s#%d", id, v)), id: id})
		}
	}
	if len(r.nodes) == 0 {
		return nil
	}
	sort.Slice(r.nodes, func(i, j int) bool {
		if r.nodes[i].point != r.nodes[j].point {
			return r.nodes[i].point < r.nodes[j].point
		}
		// Tie-break by id so every replica sorts identically.
		return r.nodes[i].id < r.nodes[j].id
	})
	return r
}

// owner returns the id owning key: the first ring node clockwise from
// the key's hash.
func (r *hashRing) owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].point >= h })
	if i == len(r.nodes) {
		i = 0
	}
	return r.nodes[i].id
}

package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters, rendered at /metrics in the
// Prometheus text exposition format (hand-rolled: no dependency).
type metrics struct {
	mu       sync.Mutex
	requests map[int]uint64 // HTTP responses by status code

	latencySum   atomic.Int64 // nanoseconds across all requests
	latencyCount atomic.Uint64

	runsStarted atomic.Uint64 // exhibit sweeps actually executed
	runErrors   atomic.Uint64 // sweeps that ended in error (incl. cancelled)
	inflight    atomic.Int64  // sweeps currently executing

	peerFetches       atomic.Uint64 // shard fetches attempted against peers
	peerFetchErrors   atomic.Uint64 // fetches that fell back to local execution
	peerPointsFetched atomic.Uint64 // sweep points computed by peers on our behalf
	peerRequests      atomic.Uint64 // peer-points requests this replica served
	peerPointsServed  atomic.Uint64 // sweep points this replica computed for peers
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[int]uint64)}
}

// observe records one finished HTTP request.
func (m *metrics) observe(code int, d time.Duration) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
	m.latencySum.Add(int64(d))
	m.latencyCount.Add(1)
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// write renders every counter the daemon owns plus the shared
// trace-cache counters, deterministically ordered.
func (s *Server) writeMetrics(w io.Writer) {
	m := s.metrics
	m.mu.Lock()
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintln(w, "# HELP mlpsim_requests_total HTTP responses by status code.")
	fmt.Fprintln(w, "# TYPE mlpsim_requests_total counter")
	for _, c := range codes {
		fmt.Fprintf(w, "mlpsim_requests_total{code=%q} %d\n", fmt.Sprint(c), m.requests[c])
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP mlpsim_request_seconds Cumulative request latency.")
	fmt.Fprintln(w, "# TYPE mlpsim_request_seconds summary")
	fmt.Fprintf(w, "mlpsim_request_seconds_sum %g\n", time.Duration(m.latencySum.Load()).Seconds())
	fmt.Fprintf(w, "mlpsim_request_seconds_count %d\n", m.latencyCount.Load())

	fmt.Fprintln(w, "# HELP mlpsim_runs_total Exhibit sweeps executed (not served from the result cache).")
	fmt.Fprintln(w, "# TYPE mlpsim_runs_total counter")
	fmt.Fprintf(w, "mlpsim_runs_total %d\n", m.runsStarted.Load())
	fmt.Fprintf(w, "mlpsim_run_errors_total %d\n", m.runErrors.Load())
	fmt.Fprintln(w, "# HELP mlpsim_runs_inflight Exhibit sweeps currently executing.")
	fmt.Fprintln(w, "# TYPE mlpsim_runs_inflight gauge")
	fmt.Fprintf(w, "mlpsim_runs_inflight %d\n", m.inflight.Load())

	fmt.Fprintln(w, "# HELP mlpsim_gang Gang-dispatch occupancy (configs per gang = configs_total / runs_total).")
	fmt.Fprintln(w, "# TYPE mlpsim_gang_runs_total counter")
	fmt.Fprintf(w, "mlpsim_gang_runs_total %d\n", s.gang.Gangs.Load())
	fmt.Fprintf(w, "mlpsim_gang_configs_total %d\n", s.gang.Configs.Load())
	fmt.Fprintf(w, "mlpsim_gang_solo_total %d\n", s.gang.Solo.Load())
	fmt.Fprintln(w, "# HELP mlpsim_gang_insts Instructions processed inside gangs, split between the structure-of-arrays fast path and scalar-fallback engines (divergence rate of the config mix).")
	fmt.Fprintln(w, "# TYPE mlpsim_gang_soa_insts_total counter")
	fmt.Fprintf(w, "mlpsim_gang_soa_insts_total %d\n", s.gang.SoAInsts.Load())
	fmt.Fprintf(w, "mlpsim_gang_scalar_fallback_insts_total %d\n", s.gang.ScalarInsts.Load())

	fmt.Fprintln(w, "# HELP mlpsim_dep Memory-dependence speculation events across all engine runs (non-oracle disambiguation modes).")
	fmt.Fprintln(w, "# TYPE mlpsim_dep_mispredicts_total counter")
	fmt.Fprintf(w, "mlpsim_dep_mispredicts_total %d\n", s.dep.Mispredicts.Load())
	fmt.Fprintf(w, "mlpsim_dep_serializes_total %d\n", s.dep.Serializes.Load())

	fmt.Fprintln(w, "# HELP mlpsim_smt_sched Scheduled-SMT fetch-policy counters across ext-smtsched sweeps.")
	fmt.Fprintln(w, "# TYPE mlpsim_smt_sched_runs_total counter")
	fmt.Fprintf(w, "mlpsim_smt_sched_runs_total %d\n", s.smtSched.Runs.Load())
	fmt.Fprintf(w, "mlpsim_smt_sched_switches_total %d\n", s.smtSched.Switches.Load())
	fmt.Fprintf(w, "mlpsim_smt_sched_bursts_total %d\n", s.smtSched.Bursts.Load())
	fmt.Fprintf(w, "mlpsim_smt_sched_overlapped_total %d\n", s.smtSched.Overlapped.Load())
	fmt.Fprintf(w, "mlpsim_smt_sched_floor_picks_total %d\n", s.smtSched.FloorPicks.Load())

	fmt.Fprintln(w, "# HELP mlpsim_peer Sharded-sweep fabric counters (peer fleet mode).")
	fmt.Fprintln(w, "# TYPE mlpsim_peer_fleet_size gauge")
	fleet := 0
	if s.ring != nil {
		fleet = len(s.peers) + 1
	}
	fmt.Fprintf(w, "mlpsim_peer_fleet_size %d\n", fleet)
	fmt.Fprintln(w, "# TYPE mlpsim_peer_fetches_total counter")
	fmt.Fprintf(w, "mlpsim_peer_fetches_total %d\n", m.peerFetches.Load())
	fmt.Fprintf(w, "mlpsim_peer_fetch_errors_total %d\n", m.peerFetchErrors.Load())
	fmt.Fprintf(w, "mlpsim_peer_points_fetched_total %d\n", m.peerPointsFetched.Load())
	fmt.Fprintf(w, "mlpsim_peer_requests_total %d\n", m.peerRequests.Load())
	fmt.Fprintf(w, "mlpsim_peer_points_served_total %d\n", m.peerPointsServed.Load())

	hits, misses, abandoned, entries := s.results.stats()
	fmt.Fprintln(w, "# HELP mlpsim_result_cache Result-cache effectiveness.")
	fmt.Fprintf(w, "mlpsim_result_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "mlpsim_result_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "mlpsim_result_cache_abandoned_total %d\n", abandoned)
	fmt.Fprintf(w, "mlpsim_result_cache_entries %d\n", entries)

	if c := s.opts.Setup.Cache; c != nil {
		st := c.Stats()
		fmt.Fprintln(w, "# HELP mlpsim_trace_cache Annotated-trace cache counters (see atrace.CacheStats).")
		fmt.Fprintf(w, "mlpsim_trace_cache_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "mlpsim_trace_cache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "mlpsim_trace_cache_builds_total %d\n", st.Builds)
		fmt.Fprintf(w, "mlpsim_trace_cache_disk_hits_total %d\n", st.DiskHits)
		fmt.Fprintf(w, "mlpsim_trace_cache_quarantined_total %d\n", st.Quarantined)
		fmt.Fprintf(w, "mlpsim_trace_cache_disk_evictions_total %d\n", st.DiskEvictions)
		fmt.Fprintf(w, "mlpsim_trace_cache_seg_evictions_total %d\n", st.SegEvictions)
		fmt.Fprintf(w, "mlpsim_trace_cache_seg_rebuilds_total %d\n", st.SegRebuilds)
		fmt.Fprintf(w, "mlpsim_trace_cache_leases_taken_total %d\n", st.LeasesTaken)
		fmt.Fprintf(w, "mlpsim_trace_cache_leases_stolen_total %d\n", st.LeasesStolen)
		fmt.Fprintf(w, "mlpsim_trace_cache_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "mlpsim_trace_cache_streams %d\n", st.Streams)
	}

	fmt.Fprintln(w, "# HELP mlpsim_draining 1 while the daemon refuses new health checks pending shutdown.")
	fmt.Fprintln(w, "# TYPE mlpsim_draining gauge")
	d := 0
	if s.Draining() {
		d = 1
	}
	fmt.Fprintf(w, "mlpsim_draining %d\n", d)
}

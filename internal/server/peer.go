package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"mlpsim/internal/core"
	"mlpsim/internal/experiments"
	"mlpsim/internal/workload"
)

// Peer mode.
//
// N daemon replicas cooperate on one exhibit: every replica builds the
// same consistent-hash ring over the fleet's ids, so for any result key
// (exhibit, seed, warmup, measure) plus batch ordinal and point index
// they all agree on the owner without coordination. A replica answering
// GET /v1/exhibits/{name} runs its own shard of the sweep while
// fetching remotely-owned shards over GET /v1/peer/points; peers
// re-derive the points deterministically from the key alone, so only
// (exhibit, batch, indices) and the resulting []core.Result travel the
// wire. Any fetch failure — dead peer, mismatched batch geometry, short
// reply — falls back to local execution, so a degraded fleet is slower,
// never wrong, and the merged response stays byte-identical to a solo
// daemon's.
//
// The peer-points endpoint itself never re-shards (the executor hook
// carries no router), so requests cannot recurse through the fleet.

// Peer identifies one replica of the fleet.
type Peer struct {
	// ID is the replica's stable identity on the hash ring.
	ID string
	// URL is the replica's base URL, e.g. "http://host:8080".
	URL string
}

// maxPeerPoints bounds one peer-points request; a full sweep batch is
// far below this.
const maxPeerPoints = 65536

// peerPointsResponse is the wire format of /v1/peer/points.
type peerPointsResponse struct {
	// BatchLen is the peer's total point count for the batch; the
	// coordinator cross-validates it against its own batch geometry.
	BatchLen int `json:"batch_len"`
	// Results carries the executed points, in request order.
	Results []core.Result `json:"results"`
}

// peerRouter routes one exhibit run's sweep points across the fleet.
// It implements experiments.ShardRouter.
type peerRouter struct {
	s   *Server
	ctx context.Context
	key resultKey

	mu   sync.Mutex
	lens map[int]int // batch ordinal -> observed local batch length
}

func (s *Server) newPeerRouter(ctx context.Context, key resultKey) *peerRouter {
	return &peerRouter{s: s, ctx: ctx, key: key, lens: make(map[int]int)}
}

// pointKey is the ring key for one sweep point: the result-cache key
// plus the point's coordinates within the run.
func (r *peerRouter) pointKey(batch, index int) string {
	return fmt.Sprintf("%s#b%d#p%d", r.key, batch, index)
}

func (r *peerRouter) Owner(batch, index int) string {
	// Owner is consulted for every point of the batch in order, which
	// makes max(index)+1 the batch length — remembered here and checked
	// against the peer's own derivation before results are trusted.
	r.mu.Lock()
	if index+1 > r.lens[batch] {
		r.lens[batch] = index + 1
	}
	r.mu.Unlock()
	id := r.s.ring.owner(r.pointKey(batch, index))
	if id == r.s.opts.PeerID {
		return ""
	}
	return id
}

func (r *peerRouter) Fetch(owner string, batch int, indices []int) ([]core.Result, error) {
	res, err := r.fetch(owner, batch, indices)
	if err != nil {
		r.s.metrics.peerFetchErrors.Add(1)
		return nil, err
	}
	r.s.metrics.peerPointsFetched.Add(uint64(len(indices)))
	return res, nil
}

func (r *peerRouter) fetch(owner string, batch int, indices []int) ([]core.Result, error) {
	r.s.metrics.peerFetches.Add(1)
	p, ok := r.s.peers[owner]
	if !ok {
		return nil, fmt.Errorf("unknown peer %q", owner)
	}
	pts := make([]string, len(indices))
	for i, idx := range indices {
		pts[i] = strconv.Itoa(idx)
	}
	q := url.Values{
		"exhibit": {r.key.Exhibit},
		"seed":    {strconv.FormatInt(r.key.Seed, 10)},
		"warmup":  {strconv.FormatInt(r.key.Warmup, 10)},
		"measure": {strconv.FormatInt(r.key.Measure, 10)},
		"batch":   {strconv.Itoa(batch)},
		"points":  {strings.Join(pts, ",")},
	}
	u := strings.TrimSuffix(p.URL, "/") + "/v1/peer/points?" + q.Encode()
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.s.peerClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", owner, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("peer %s: %s: %s", owner, resp.Status, strings.TrimSpace(string(body)))
	}
	var pr peerPointsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("peer %s: decode: %w", owner, err)
	}
	r.mu.Lock()
	want := r.lens[batch]
	r.mu.Unlock()
	if pr.BatchLen != want {
		return nil, fmt.Errorf("peer %s derived %d points for batch %d, coordinator has %d — geometry mismatch",
			owner, pr.BatchLen, batch, want)
	}
	if len(pr.Results) != len(indices) {
		return nil, fmt.Errorf("peer %s returned %d results for %d requested points", owner, len(pr.Results), len(indices))
	}
	return pr.Results, nil
}

// parsePoints parses the comma-separated point index list.
func parsePoints(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("points parameter is required")
	}
	parts := strings.Split(s, ",")
	if len(parts) > maxPeerPoints {
		return nil, fmt.Errorf("%d points exceeds the per-request cap %d", len(parts), maxPeerPoints)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("points=%q: bad index %q", s, p)
		}
		out[i] = n
	}
	return out, nil
}

// handlePeerPoints executes one shard of one batch of an exhibit on
// behalf of a coordinating replica. The endpoint is available on every
// daemon (peer fleet or not): it only exposes results the public
// exhibit endpoint already serves, at finer granularity.
func (s *Server) handlePeerPoints(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("exhibit")
	if experiments.Find(name) == nil {
		httpError(w, http.StatusNotFound, "unknown exhibit %q", name)
		return
	}
	seed, err := int64Param(r, "seed", s.opts.Setup.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	warmup, err := int64Param(r, "warmup", s.opts.Setup.Warmup)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	measure, err := int64Param(r, "measure", s.opts.Setup.Measure)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if warmup < 0 || measure <= 0 {
		httpError(w, http.StatusBadRequest, "warmup must be >= 0 and measure > 0 (got %d, %d)", warmup, measure)
		return
	}
	batch, err := strconv.Atoi(r.URL.Query().Get("batch"))
	if err != nil || batch < 0 {
		httpError(w, http.StatusBadRequest, "batch=%q: want a non-negative integer", r.URL.Query().Get("batch"))
		return
	}
	indices, err := parsePoints(r.URL.Query().Get("points"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	// Shard execution shares the sweep semaphore with full exhibit runs:
	// a replica's total simulation load is bounded no matter who asks.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		httpError(w, http.StatusGatewayTimeout, "peer points %s: %v", name, ctx.Err())
		return
	}
	defer func() { <-s.sem }()
	s.metrics.peerRequests.Add(1)

	setup := s.opts.Setup
	setup.Seed = seed
	setup.Workloads = workload.Presets(seed)
	setup.Warmup = warmup
	setup.Measure = measure
	setup.Ctx = ctx

	results, batchLen, err := experiments.RunExhibitShard(setup, name, batch, indices)
	if err != nil {
		// 422: the request was well-formed but this replica cannot derive
		// that shard (geometry drift between versions, cancelled context).
		// The coordinator falls back to local execution.
		httpError(w, http.StatusUnprocessableEntity, "shard %s batch %d: %v", name, batch, err)
		return
	}
	s.metrics.peerPointsServed.Add(uint64(len(results)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(peerPointsResponse{BatchLen: batchLen, Results: results})
}

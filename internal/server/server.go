// Package server turns the experiment registry into a long-lived HTTP
// daemon, so the warm annotated-trace cache (in-memory streams plus the
// mmap'd on-disk spill directory) is amortized across many requests
// instead of one CLI invocation.
//
// API (all GET):
//
//	/v1/exhibits                 list exhibits: [{"id","title"}]
//	/v1/exhibits/{name}          run one exhibit; query parameters:
//	    seed=N      workload generation seed     (default: daemon's)
//	    warmup=N    warm-up instructions per run (default: daemon's)
//	    measure=N   measured instructions        (default: daemon's)
//	    format=json|csv|text     response body   (default: json)
//	/healthz                     200 "ok", or 503 "draining" during shutdown
//	/metrics                     Prometheus text format counters
//
// Results are served from an in-memory singleflight cache keyed by
// (exhibit, seed, warmup, measure): N concurrent requests for the same
// key trigger exactly one sweep, and a sweep whose every requester has
// disconnected is cancelled mid-flight (the sweep worker pool drains;
// nothing leaks). Sweep execution is bounded by a worker semaphore
// reusing the Setup's parallelism, so a burst of distinct requests
// queues instead of oversubscribing the simulator.
//
// The JSON and CSV bodies are produced by the same experiments.WriteJSON
// / experiments.WriteCSV the CLI uses; the golden equivalence test in
// cmd/experiments pins them byte-identical to CLI output.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"mlpsim/internal/experiments"
	"mlpsim/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Setup carries the daemon-wide defaults (seed, warmup, measure) and
	// the shared trace cache every request runs against. Per-request
	// query parameters override seed/warmup/measure; the Cache pointer is
	// shared by all requests — that sharing is the daemon's whole point.
	Setup experiments.Setup
	// MaxConcurrent bounds simultaneously executing sweeps (not HTTP
	// connections). 0 reuses the Setup's parallelism (GOMAXPROCS when
	// that is 0 too): one sweep already saturates that many cores, so
	// extra sweeps queue on the semaphore instead of thrashing.
	MaxConcurrent int
	// RequestTimeout caps one request's wait, queueing included.
	// 0 means 15 minutes.
	RequestTimeout time.Duration
	// MaxResults bounds the completed-result cache (LRU). 0 means 64.
	MaxResults int
	// PeerID is this replica's identity on the fleet's hash ring. Empty
	// (or a fleet smaller than two) runs solo.
	PeerID string
	// Peers lists every replica of the fleet, this one included (its
	// own entry needs no usable URL). All replicas must be configured
	// with the same id set — ownership is a pure function of it.
	Peers []Peer
	// PeerTimeout caps one peer-points fetch. 0 means RequestTimeout.
	PeerTimeout time.Duration
}

// Server answers exhibit requests. Create with New, expose via Handler,
// flip BeginDrain before http.Server.Shutdown so load balancers stop
// routing to a dying instance.
type Server struct {
	opts     Options
	sem      chan struct{}
	results  *resultCache
	metrics  *metrics
	gang     *experiments.GangStats
	dep      *experiments.DepStats
	smtSched *experiments.SMTSchedStats
	mux      *http.ServeMux
	draining atomic.Bool

	// Peer mode (see peer.go): nil ring means solo.
	ring       *hashRing
	peers      map[string]Peer // fleet minus this replica
	peerClient *http.Client
}

// New builds a Server; opts.Setup must have Workloads populated (use
// experiments.Default or Quick).
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		if opts.MaxConcurrent = opts.Setup.Parallelism; opts.MaxConcurrent <= 0 {
			opts.MaxConcurrent = runtime.GOMAXPROCS(0)
		}
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 15 * time.Minute
	}
	if opts.MaxResults <= 0 {
		opts.MaxResults = 64
	}
	s := &Server{
		opts:     opts,
		sem:      make(chan struct{}, opts.MaxConcurrent),
		results:  newResultCache(opts.MaxResults),
		metrics:  newMetrics(),
		gang:     &experiments.GangStats{},
		dep:      &experiments.DepStats{},
		smtSched: &experiments.SMTSchedStats{},
		mux:      http.NewServeMux(),
	}
	// Daemon-wide gang occupancy counters: every request's sweep reports
	// into the same stats, exported on /metrics.
	if s.opts.Setup.GangStats == nil {
		s.opts.Setup.GangStats = s.gang
	} else {
		s.gang = s.opts.Setup.GangStats
	}
	// Likewise for the memory-dependence speculation counters.
	if s.opts.Setup.DepStats == nil {
		s.opts.Setup.DepStats = s.dep
	} else {
		s.dep = s.opts.Setup.DepStats
	}
	// And the scheduled-SMT fetch-policy counters.
	if s.opts.Setup.SMTSched == nil {
		s.opts.Setup.SMTSched = s.smtSched
	} else {
		s.smtSched = s.opts.Setup.SMTSched
	}
	// Peer fleet: a ring forms when this replica has an identity and at
	// least one other replica to talk to; otherwise the daemon runs
	// solo. The ring hashes the configured id set — a PeerID absent from
	// Peers yields a coordinator-only replica that owns no points and
	// answers exhibits purely by scatter/gather (plus local fallback).
	if opts.PeerID != "" {
		ids := make([]string, 0, len(opts.Peers))
		s.peers = make(map[string]Peer)
		for _, p := range opts.Peers {
			ids = append(ids, p.ID)
			if p.ID != "" && p.ID != opts.PeerID {
				s.peers[p.ID] = p
			}
		}
		if len(s.peers) > 0 {
			s.ring = newHashRing(ids)
			timeout := opts.PeerTimeout
			if timeout <= 0 {
				timeout = opts.RequestTimeout
			}
			s.peerClient = &http.Client{Timeout: timeout}
		} else {
			s.peers = nil
		}
	}
	s.mux.HandleFunc("GET /v1/exhibits", s.handleList)
	s.mux.HandleFunc("GET /v1/exhibits/{name}", s.handleExhibit)
	s.mux.HandleFunc("GET /v1/peer/points", s.handlePeerPoints)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		s.metrics.observe(rec.code, time.Since(start))
	})
}

// BeginDrain flips /healthz to 503 so orchestrators stop sending
// traffic; in-flight requests keep running (http.Server.Shutdown is what
// actually waits them out).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// exhibitInfo is one /v1/exhibits listing entry.
type exhibitInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var list []exhibitInfo
	for _, rn := range experiments.All() {
		list = append(list, exhibitInfo{ID: rn.ID, Title: rn.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(struct {
		Exhibits []exhibitInfo `json:"exhibits"`
	}{Exhibits: list})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// int64Param parses one optional integer query parameter.
func int64Param(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not an integer", name, v)
	}
	return n, nil
}

func (s *Server) handleExhibit(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	runner := experiments.Find(name)
	if runner == nil {
		httpError(w, http.StatusNotFound, "unknown exhibit %q (see /v1/exhibits)", name)
		return
	}
	seed, err := int64Param(r, "seed", s.opts.Setup.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	warmup, err := int64Param(r, "warmup", s.opts.Setup.Warmup)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	measure, err := int64Param(r, "measure", s.opts.Setup.Measure)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if warmup < 0 || measure <= 0 {
		httpError(w, http.StatusBadRequest, "warmup must be >= 0 and measure > 0 (got %d, %d)", warmup, measure)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" && format != "text" {
		httpError(w, http.StatusBadRequest, "format=%q; want json, csv or text", format)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	key := resultKey{Exhibit: runner.ID, Seed: seed, Warmup: warmup, Measure: measure}
	out, err := s.results.do(ctx, key, func(runCtx context.Context) (fmt.Stringer, error) {
		return s.runExhibit(runCtx, *runner, key)
	})
	if err != nil {
		// The request timed out, the client hung up, or every interested
		// client did (the sweep was then cancelled). 504 covers all:
		// a disconnected client never reads the body anyway.
		httpError(w, http.StatusGatewayTimeout, "exhibit %s: %v", key, err)
		return
	}

	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := experiments.WriteJSON(w, out); err != nil {
			httpError(w, http.StatusInternalServerError, "render json: %v", err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := experiments.WriteCSV(w, out); err != nil {
			httpError(w, http.StatusInternalServerError, "render csv: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out.String())
	}
}

// runExhibit executes one sweep under the bounded worker semaphore, with
// the request context plumbed into the sweep loops so cancellation
// stops point dispatch and drains the pool.
func (s *Server) runExhibit(ctx context.Context, runner experiments.Runner, key resultKey) (fmt.Stringer, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	s.metrics.runsStarted.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	setup := s.opts.Setup
	setup.Seed = key.Seed
	setup.Workloads = workload.Presets(key.Seed)
	setup.Warmup = key.Warmup
	setup.Measure = key.Measure
	setup.Ctx = ctx
	if s.ring != nil {
		// Peer fleet: remotely-owned sweep points are fetched from their
		// owners instead of run; any failure falls back to local
		// execution, so the output is byte-identical either way.
		setup = setup.ShardedBy(s.newPeerRouter(ctx, key))
	}

	out := runner.Run(setup)
	if err := ctx.Err(); err != nil {
		// The sweep stopped early; its rows are partial. Discard.
		s.metrics.runErrors.Add(1)
		return nil, err
	}
	return out, nil
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mlpsim/internal/experiments"
)

// fleetSetup returns one replica's Setup: tiny runs, private trace
// cache — replicas share nothing but the wire protocol.
func fleetSetup() experiments.Setup {
	setup := experiments.Quick(1)
	setup.Warmup = 20_000
	setup.Measure = 60_000
	setup.Parallelism = 2
	return setup
}

// fleet is a set of in-process replicas plus an observer that owns no
// points.
type fleet struct {
	servers []*Server
	https   []*httptest.Server
	obs     *Server
	obsHTTP *httptest.Server
}

// newFleet starts n replicas (ids r0..r{n-1}) and one coordinator-only
// observer ("obs", not on the ring). Peer URLs must exist before the
// Servers do, so each httptest.Server fronts a swappable handler that
// is installed once the fleet list is known.
func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{}
	handlers := make([]atomic.Value, n+1) // [n] = observer
	for i := 0; i <= n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		if i < n {
			f.https = append(f.https, ts)
		} else {
			f.obsHTTP = ts
		}
	}
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("r%d", i), URL: f.https[i].URL}
	}
	for i := 0; i < n; i++ {
		s := New(Options{
			Setup: fleetSetup(), RequestTimeout: time.Minute,
			PeerID: peers[i].ID, Peers: peers,
		})
		f.servers = append(f.servers, s)
		handlers[i].Store(s.Handler())
	}
	f.obs = New(Options{
		Setup: fleetSetup(), RequestTimeout: time.Minute,
		PeerID: "obs", Peers: peers,
	})
	handlers[n].Store(f.obs.Handler())
	return f
}

// TestFleetByteIdenticalToSolo is the tentpole's acceptance test: every
// replica of a 3-replica fleet — and an observer that owns none of the
// points — answers figure4 and ext-storesets byte-identical to a solo
// daemon in all three formats.
func TestFleetByteIdenticalToSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit sweeps over HTTP")
	}
	_, solo := testServer(t)
	f := newFleet(t, 3)

	for _, exhibit := range []string{"figure4", "ext-storesets"} {
		for _, format := range []string{"json", "csv", "text"} {
			path := "/v1/exhibits/" + exhibit + "?format=" + format
			code, want := get(t, solo, path)
			if code != http.StatusOK {
				t.Fatalf("solo GET %s: %d\n%s", path, code, want)
			}
			targets := []*httptest.Server{f.obsHTTP}
			if exhibit == "figure4" {
				targets = append(targets, f.https...)
			}
			for ti, ts := range targets {
				code, got := get(t, ts, path)
				if code != http.StatusOK {
					t.Fatalf("fleet[%d] GET %s: %d\n%s", ti, path, code, got)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("fleet[%d] %s differs from solo:\n--- solo ---\n%s\n--- fleet ---\n%s",
						ti, path, want, got)
				}
			}
		}
	}

	// The observer owns no points, so its answers were entirely
	// scatter/gather: fetches happened and none fell back.
	if n := f.obs.metrics.peerPointsFetched.Load(); n == 0 {
		t.Error("observer fetched 0 points; the sweeps never offloaded")
	}
	if n := f.obs.metrics.peerFetchErrors.Load(); n != 0 {
		t.Errorf("observer hit %d fetch errors against a healthy fleet", n)
	}
	var served uint64
	for _, s := range f.servers {
		served += s.metrics.peerPointsServed.Load()
	}
	if served == 0 {
		t.Error("no replica served any peer points")
	}
}

// TestFleetSurvivesDeadPeer: a replica whose fleet list names a dead
// peer still answers byte-identical to solo — the dead peer's shard
// falls back to local execution.
func TestFleetSurvivesDeadPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit sweeps over HTTP")
	}
	_, solo := testServer(t)

	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from here on
	peers := []Peer{{ID: "live", URL: ""}, {ID: "dead", URL: dead.URL}}
	live := New(Options{
		Setup: fleetSetup(), RequestTimeout: time.Minute,
		PeerID: "live", Peers: peers,
	})
	ts := httptest.NewServer(live.Handler())
	t.Cleanup(ts.Close)

	path := "/v1/exhibits/table5?format=text"
	codeSolo, want := get(t, solo, path)
	code, got := get(t, ts, path)
	if codeSolo != http.StatusOK || code != http.StatusOK {
		t.Fatalf("status solo=%d live=%d", codeSolo, code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("degraded fleet differs from solo:\n%s\nvs\n%s", want, got)
	}
	if live.metrics.peerFetchErrors.Load() == 0 {
		t.Error("dead peer produced no fetch errors; was anything offloaded?")
	}
}

// TestPeerPointsEndpoint pins the wire protocol itself: happy path plus
// every request-level failure mode.
func TestPeerPointsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts, "/v1/peer/points?exhibit=table5&batch=0&points=0,1")
	if code != http.StatusOK {
		t.Fatalf("happy path: %d\n%s", code, body)
	}
	var pr peerPointsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(pr.Results) != 2 || pr.BatchLen <= 0 {
		t.Fatalf("results=%d batch_len=%d, want 2 results and a positive length", len(pr.Results), pr.BatchLen)
	}
	if pr.Results[0].Instructions == 0 {
		t.Error("result carries zero instructions; the shard never ran")
	}

	cases := []struct {
		name, path string
		wantCode   int
	}{
		{"unknown exhibit", "/v1/peer/points?exhibit=nope&batch=0&points=0", http.StatusNotFound},
		{"missing points", "/v1/peer/points?exhibit=table5&batch=0", http.StatusBadRequest},
		{"bad points", "/v1/peer/points?exhibit=table5&batch=0&points=1,x", http.StatusBadRequest},
		{"negative point", "/v1/peer/points?exhibit=table5&batch=0&points=-1", http.StatusBadRequest},
		{"bad batch", "/v1/peer/points?exhibit=table5&batch=-1&points=0", http.StatusBadRequest},
		{"batch past the end", "/v1/peer/points?exhibit=table5&batch=99&points=0", http.StatusUnprocessableEntity},
		{"index out of range", "/v1/peer/points?exhibit=table5&batch=0&points=99999", http.StatusUnprocessableEntity},
		{"bad measure", "/v1/peer/points?exhibit=table5&batch=0&points=0&measure=0", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := get(t, ts, tc.path); code != tc.wantCode {
			t.Errorf("%s: status %d, want %d\n%s", tc.name, code, tc.wantCode, body)
		}
	}
}

// TestSoloIgnoresPeerOptions: peer flags without a usable fleet (no
// second replica) leave the daemon in plain solo mode.
func TestSoloIgnoresPeerOptions(t *testing.T) {
	s := New(Options{
		Setup: fleetSetup(), RequestTimeout: time.Minute,
		PeerID: "only", Peers: []Peer{{ID: "only", URL: "http://localhost:1"}},
	})
	if s.ring != nil || s.peers != nil {
		t.Fatal("single-member fleet formed a ring")
	}
}

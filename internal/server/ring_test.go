package server

import (
	"fmt"
	"testing"
)

func TestRingOrderIndependent(t *testing.T) {
	a := newHashRing([]string{"r0", "r1", "r2"})
	b := newHashRing([]string{"r2", "r0", "r1", "r2"}) // shuffled + duplicate
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("figure4?seed=1#b0#p%d", i)
		if ao, bo := a.owner(k), b.owner(k); ao != bo {
			t.Fatalf("key %q: owner %q vs %q across member orderings", k, ao, bo)
		}
	}
}

func TestRingCoversAllMembers(t *testing.T) {
	ids := []string{"r0", "r1", "r2"}
	r := newHashRing(ids)
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("ext-storesets?seed=7#b0#p%d", i))]++
	}
	for _, id := range ids {
		// Virtual nodes keep the split coarse-grained fair; 10% of an
		// even share is a very loose floor that still catches a broken
		// ring (one member owning everything or nothing).
		if counts[id] < n/len(ids)/10 {
			t.Errorf("member %s owns %d of %d keys — ring badly skewed: %v", id, counts[id], n, counts)
		}
	}
}

func TestRingSingleMember(t *testing.T) {
	r := newHashRing([]string{"only"})
	for i := 0; i < 50; i++ {
		if got := r.owner(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("owner(k%d) = %q, want only", i, got)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if r := newHashRing(nil); r != nil {
		t.Fatalf("empty fleet built a ring: %+v", r)
	}
	if r := newHashRing([]string{""}); r != nil {
		t.Fatalf("blank ids built a ring: %+v", r)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlpsim/internal/experiments"
)

// testServer returns a Server over a tiny Setup (fast on one core) plus
// an httptest wrapper around its Handler.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	setup := experiments.Quick(1)
	setup.Warmup = 20_000
	setup.Measure = 60_000
	setup.Parallelism = 2
	s := New(Options{Setup: setup, RequestTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get fetches path and returns the status code and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestListExhibits(t *testing.T) {
	_, ts := testServer(t)
	code, body := get(t, ts, "/v1/exhibits")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200\n%s", code, body)
	}
	var got struct {
		Exhibits []struct{ ID, Title string } `json:"exhibits"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if want := len(experiments.All()); len(got.Exhibits) != want {
		t.Errorf("listed %d exhibits, want %d", len(got.Exhibits), want)
	}
	ids := make(map[string]bool)
	for _, e := range got.Exhibits {
		ids[e.ID] = true
	}
	for _, id := range []string{"table3", "figure4", "stability"} {
		if !ids[id] {
			t.Errorf("exhibit %q missing from listing", id)
		}
	}
}

// TestExhibitRequestValidation is the table test of every request-level
// failure mode.
func TestExhibitRequestValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name, path string
		wantCode   int
		wantErr    string
	}{
		{"unknown exhibit", "/v1/exhibits/figure99", http.StatusNotFound, "unknown exhibit"},
		{"bad seed", "/v1/exhibits/table5?seed=banana", http.StatusBadRequest, "not an integer"},
		{"bad warmup", "/v1/exhibits/table5?warmup=1e6", http.StatusBadRequest, "not an integer"},
		{"negative warmup", "/v1/exhibits/table5?warmup=-1", http.StatusBadRequest, "warmup"},
		{"zero measure", "/v1/exhibits/table5?measure=0", http.StatusBadRequest, "measure"},
		{"bad format", "/v1/exhibits/table5?format=xml", http.StatusBadRequest, "want json, csv or text"},
		{"post rejected", "", http.StatusMethodNotAllowed, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body []byte
			if tc.name == "post rejected" {
				resp, err := ts.Client().Post(ts.URL+"/v1/exhibits/table5", "text/plain", nil)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				code = resp.StatusCode
			} else {
				code, body = get(t, ts, tc.path)
			}
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d\n%s", code, tc.wantCode, body)
			}
			if tc.wantErr != "" && !strings.Contains(string(body), tc.wantErr) {
				t.Errorf("body %q does not mention %q", body, tc.wantErr)
			}
		})
	}
}

// TestExhibitFormats runs one cheap exhibit through every format and
// holds each body to the exact bytes the shared writers produce for a
// directly computed result (the CLI-level equivalence test in
// cmd/experiments then pins the full binary-to-daemon path).
func TestExhibitFormats(t *testing.T) {
	s, ts := testServer(t)

	direct := s.opts.Setup
	out := experiments.RunTable5(direct)

	var wantJSON, wantCSV bytes.Buffer
	if err := experiments.WriteJSON(&wantJSON, out); err != nil {
		t.Fatal(err)
	}
	if err := experiments.WriteCSV(&wantCSV, out); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		format string
		want   []byte
	}{
		{"json", wantJSON.Bytes()},
		{"csv", wantCSV.Bytes()},
		{"text", []byte(out.String())},
	}
	for _, tc := range cases {
		t.Run(tc.format, func(t *testing.T) {
			code, body := get(t, ts, "/v1/exhibits/table5?format="+tc.format)
			if code != http.StatusOK {
				t.Fatalf("status %d\n%s", code, body)
			}
			if !bytes.Equal(body, tc.want) {
				t.Errorf("%s body differs from direct rendering\ngot:\n%s\nwant:\n%s", tc.format, body, tc.want)
			}
		})
	}
	// Default format is JSON.
	code, body := get(t, ts, "/v1/exhibits/table5")
	if code != http.StatusOK || !bytes.Equal(body, wantJSON.Bytes()) {
		t.Errorf("default format response (status %d) differs from JSON rendering", code)
	}
}

// TestResultCacheKeying: same key is computed once; any changed
// dimension of (seed, warmup, measure) is a distinct computation.
func TestResultCacheKeying(t *testing.T) {
	s, ts := testServer(t)
	paths := []string{
		"/v1/exhibits/table5",
		"/v1/exhibits/table5",               // result-cache hit
		"/v1/exhibits/table5?seed=2",        // new seed -> run
		"/v1/exhibits/table5?warmup=10000",  // new warmup -> run
		"/v1/exhibits/table5?measure=50000", // new measure -> run
		"/v1/exhibits/table5?seed=2",        // hit again
		"/v1/exhibits/table5?format=csv",    // format is NOT part of the key
	}
	for _, p := range paths {
		if code, body := get(t, ts, p); code != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", p, code, body)
		}
	}
	if runs := s.metrics.runsStarted.Load(); runs != 4 {
		t.Errorf("7 requests executed %d sweeps, want 4", runs)
	}
	hits, misses, _, entries := s.results.stats()
	if misses != 4 || hits != 3 {
		t.Errorf("result cache hits=%d misses=%d, want 3/4", hits, misses)
	}
	if entries != 4 {
		t.Errorf("result cache holds %d entries, want 4", entries)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := testServer(t)
	if code, body := get(t, ts, "/healthz"); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, body)
	}
	s.BeginDrain()
	if code, body := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Fatalf("draining healthz = %d %q, want 503 draining", code, body)
	}
	// Draining refuses health checks but keeps serving real requests
	// until http.Server.Shutdown closes the listener.
	if code, _ := get(t, ts, "/v1/exhibits"); code != http.StatusOK {
		t.Errorf("exhibit listing refused during drain: %d", code)
	}
	if code, body := get(t, ts, "/metrics"); code != http.StatusOK || !strings.Contains(string(body), "mlpsim_draining 1") {
		t.Errorf("metrics during drain (status %d) missing mlpsim_draining 1", code)
	}
}

// TestDrainCompletesInflight runs the daemon under a real http.Server
// and asserts the SIGTERM sequence (BeginDrain, then Shutdown) lets an
// in-flight exhibit request finish with a 200 instead of cutting it off.
func TestDrainCompletesInflight(t *testing.T) {
	setup := experiments.Quick(1)
	setup.Warmup = 20_000
	setup.Measure = 60_000
	setup.Parallelism = 2
	s := New(Options{Setup: setup})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := hs.Client().Get(hs.URL + "/v1/exhibits/table6")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		done <- result{code: resp.StatusCode}
	}()

	// Let the request reach the sweep (runsStarted is monotonic, so this
	// cannot miss a fast sweep), then drain exactly like serve() does.
	waitFor(t, 5*time.Second, func() bool { return s.metrics.runsStarted.Load() > 0 })
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Config.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during in-flight request: %v", err)
	}
	r := <-done
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code=%d err=%v, want 200", r.code, r.err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	if code, _ := get(t, ts, "/v1/exhibits/table5"); code != http.StatusOK {
		t.Fatal("warm-up request failed")
	}
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, metric := range []string{
		`mlpsim_requests_total{code="200"} 1`,
		"mlpsim_request_seconds_count 1",
		"mlpsim_runs_total 1",
		"mlpsim_runs_inflight 0",
		"mlpsim_result_cache_misses_total 1",
		// table5 is 3 workloads x 2 configs; each workload's pair shares
		// one annotated stream, so the sweep dispatches 3 gangs of 2.
		"mlpsim_gang_runs_total 3",
		"mlpsim_gang_configs_total 6",
		"mlpsim_gang_solo_total 0",
		// table5's configs are all in-order, so every gang instruction
		// runs on the scalar fallback and none on the SoA fast path.
		"mlpsim_gang_soa_insts_total 0",
		"mlpsim_gang_scalar_fallback_insts_total",
		// table5 runs oracle disambiguation only: the dep counters are
		// exported and stay zero.
		"mlpsim_dep_mispredicts_total 0",
		"mlpsim_dep_serializes_total 0",
		// table5 never schedules SMT threads: the policy counters are
		// exported and stay zero.
		"mlpsim_smt_sched_runs_total 0",
		"mlpsim_smt_sched_switches_total 0",
		"mlpsim_smt_sched_bursts_total 0",
		"mlpsim_smt_sched_overlapped_total 0",
		"mlpsim_smt_sched_floor_picks_total 0",
		"mlpsim_trace_cache_builds_total",
		"mlpsim_draining 0",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics output missing %q\n%s", metric, body)
		}
	}
	if strings.Contains(string(body), "mlpsim_gang_scalar_fallback_insts_total 0\n") {
		t.Errorf("table5's in-order gangs recorded no scalar-fallback instructions")
	}
}

// TestMetricsSMTSched pins the daemon-wide fold-in of the scheduled-SMT
// policy counters: one ext-smtsched sweep is 2 mixes x 3 thread counts
// x 3 policies = 18 policy runs, all reported on /metrics.
func TestMetricsSMTSched(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thread sweep")
	}
	_, ts := testServer(t)
	if code, body := get(t, ts, "/v1/exhibits/ext-smtsched"); code != http.StatusOK {
		t.Fatalf("ext-smtsched request: status %d\n%s", code, body)
	}
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if want := "mlpsim_smt_sched_runs_total 18"; !strings.Contains(string(body), want) {
		t.Errorf("metrics output missing %q\n%s", want, body)
	}
	if strings.Contains(string(body), "mlpsim_smt_sched_bursts_total 0\n") {
		t.Errorf("ext-smtsched sweep recorded no miss bursts")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mlpsim/internal/experiments"
)

// TestConcurrentRequestsSingleSweep hammers one exhibit key from N
// goroutines and asserts exactly one sweep executed underneath: the
// rest either joined the in-flight computation or hit the completed
// result. Run under -race via `make test`; it also pins that every
// response carries identical bytes.
func TestConcurrentRequestsSingleSweep(t *testing.T) {
	s, ts := testServer(t)

	const n = 8
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/exhibits/table5?format=csv")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %s", resp.Status)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d returned different bytes", i)
		}
	}
	if runs := s.metrics.runsStarted.Load(); runs != 1 {
		t.Errorf("%d concurrent requests executed %d sweeps, want exactly 1", n, runs)
	}
	hits, misses, _, _ := s.results.stats()
	if misses != 1 || hits != n-1 {
		t.Errorf("result cache hits=%d misses=%d, want %d/1", hits, misses, n-1)
	}
}

// TestClientDisconnectCancelsSweep is the fault-injection test at the
// HTTP layer: the only client interested in a sweep hangs up mid-sweep;
// the result cache must cancel the underlying run, the sweep's worker
// pool must drain, and the daemon must return to a fully idle state
// with no goroutine left behind.
func TestClientDisconnectCancelsSweep(t *testing.T) {
	setup := experiments.Quick(1)
	setup.Warmup = 50_000
	setup.Measure = 200_000
	setup.Parallelism = 2
	s := New(Options{Setup: setup, RequestTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()

	// figure4 is a 75-point sweep — long enough that cancellation lands
	// mid-sweep (the annotation pass alone outlives the 50ms fuse).
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/exhibits/figure4", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// Hang up once the sweep has actually started executing.
	waitFor(t, 10*time.Second, func() bool { return s.metrics.runsStarted.Load() > 0 })
	cancel()
	if err := <-done; err == nil {
		t.Fatal("request succeeded despite the client hanging up mid-sweep")
	}

	// The abandoned sweep must notice, stop, and drain.
	waitFor(t, 30*time.Second, func() bool { return s.metrics.inflight.Load() == 0 })
	waitFor(t, 10*time.Second, func() bool {
		_, _, abandoned, _ := s.results.stats()
		return abandoned == 1
	})
	if errors := s.metrics.runErrors.Load(); errors != 1 {
		t.Errorf("runErrors = %d, want 1 (the cancelled sweep)", errors)
	}

	// Goroutine-count delta check: once idle connections are gone the
	// daemon must be back to its pre-request goroutine population.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the cancelled request", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The daemon is still healthy and can serve the same exhibit fresh
	// (failed builds are forgotten, not cached).
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("daemon unhealthy after a cancelled sweep: %d", code)
	}
	if code, _ := get(t, ts, "/v1/exhibits/table5"); code != http.StatusOK {
		t.Errorf("daemon cannot run new sweeps after a cancelled one: %d", code)
	}
}

// TestRequestTimeout: a request whose budget expires gets a 504 and the
// abandoned sweep is cancelled rather than left running.
func TestRequestTimeout(t *testing.T) {
	setup := experiments.Quick(1)
	setup.Warmup = 50_000
	setup.Measure = 200_000
	setup.Parallelism = 2
	s := New(Options{Setup: setup, RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/exhibits/figure4")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504\n%s", code, body)
	}
	waitFor(t, 30*time.Second, func() bool { return s.metrics.inflight.Load() == 0 })
}

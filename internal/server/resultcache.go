package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// resultKey identifies one computed exhibit: the runner plus every Setup
// field that can change its rows. Workloads derive from Seed and the
// trace cache is keyed independently, so (exhibit, seed, warmup,
// measure) pins the result bytes exactly; Parallelism is deliberately
// absent because results are bit-identical at any worker count (the
// golden tests in internal/experiments pin that).
type resultKey struct {
	Exhibit string
	Seed    int64
	Warmup  int64
	Measure int64
}

func (k resultKey) String() string {
	return fmt.Sprintf("%s?seed=%d&warmup=%d&measure=%d", k.Exhibit, k.Seed, k.Warmup, k.Measure)
}

// resultEntry is one in-flight or completed exhibit computation.
type resultEntry struct {
	key   resultKey
	ready chan struct{} // closed when val/err are set
	val   fmt.Stringer
	err   error

	// waiters counts requests currently joined to an in-flight build;
	// when the last one walks away the build's context is cancelled so
	// the sweep stops burning CPU for nobody (see abandon).
	waiters int
	cancel  context.CancelFunc
	elem    *list.Element // LRU position; completed successes only
}

// resultCache is the in-memory singleflight store of computed exhibits:
// concurrent requests for the same resultKey join exactly one
// computation, completed results are kept LRU-bounded, and failed or
// abandoned computations are forgotten so a later request retries.
type resultCache struct {
	mu      sync.Mutex
	max     int // completed entries kept; <= 0 means unbounded
	entries map[resultKey]*resultEntry
	order   *list.List // front = most recently used

	hits      uint64 // served from memory, or joined an in-flight build
	misses    uint64 // had to start a computation
	abandoned uint64 // builds cancelled because every waiter left
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		entries: make(map[resultKey]*resultEntry),
		order:   list.New(),
	}
}

// do returns the cached result for key, computing it with run at most
// once no matter how many requests arrive concurrently. ctx is the
// *caller's* context: when it ends, the caller detaches; the underlying
// run keeps going as long as at least one request still wants it and is
// cancelled when the last one leaves.
func (c *resultCache) do(ctx context.Context, key resultKey, run func(context.Context) (fmt.Stringer, error)) (fmt.Stringer, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		select {
		case <-e.ready:
			if e.elem != nil {
				c.order.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			return e.val, e.err
		default:
		}
		e.waiters++
		c.mu.Unlock()
		return c.wait(ctx, e)
	}

	runCtx, cancel := context.WithCancel(context.Background())
	e := &resultEntry{key: key, ready: make(chan struct{}), waiters: 1, cancel: cancel}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	go func() {
		val, err := run(runCtx)
		c.mu.Lock()
		e.val, e.err = val, err
		if err != nil {
			// Failed (or cancelled) builds are forgotten so the next
			// request retries instead of replaying the error forever.
			delete(c.entries, key)
		} else {
			e.elem = c.order.PushFront(e)
			c.evictLocked()
		}
		c.mu.Unlock()
		cancel()
		close(e.ready)
	}()
	return c.wait(ctx, e)
}

// wait blocks until the entry completes or the caller's context ends.
func (c *resultCache) wait(ctx context.Context, e *resultEntry) (fmt.Stringer, error) {
	select {
	case <-e.ready:
		return e.val, e.err
	case <-ctx.Done():
		c.abandon(e)
		return nil, ctx.Err()
	}
}

// abandon detaches one waiter from an in-flight build; the last one out
// cancels the build's context, which stops the sweep's dispatch loop and
// drains its worker pool (experiments.Setup.forEach).
func (c *resultCache) abandon(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.waiters--
	if e.waiters > 0 {
		return
	}
	select {
	case <-e.ready:
		// Completed while we were timing out; keep the result.
	default:
		e.cancel()
		c.abandoned++
	}
}

// evictLocked drops least-recently-used completed results over capacity.
func (c *resultCache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for c.order.Len() > c.max {
		back := c.order.Back()
		e := back.Value.(*resultEntry)
		c.order.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
	}
}

// stats snapshots the counters.
func (c *resultCache) stats() (hits, misses, abandoned uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.abandoned, c.order.Len()
}

// Package vpred models missing-load value prediction (§3.6, §5.5).
//
// The paper uses a 16K-entry last-value predictor consulted *only for
// missing loads* — predicting just those values keeps the predictor small
// while still cutting the dependences that matter for MLP. Table 6 reports
// its accuracy as correct / wrong / no-predict fractions.
package vpred

import "mlpsim/internal/isa"

// Outcome classifies one prediction attempt, matching Table 6's columns.
type Outcome uint8

const (
	// NoPredict means the predictor had no entry for the load (or
	// deliberately declined to predict).
	NoPredict Outcome = iota
	// Correct means the predicted value matched the loaded value.
	Correct
	// Wrong means a prediction was made and did not match.
	Wrong
)

// String returns the Table 6 column name for the outcome.
func (o Outcome) String() string {
	switch o {
	case NoPredict:
		return "No Predict"
	case Correct:
		return "Correct"
	case Wrong:
		return "Wrong"
	}
	return "Outcome(?)"
}

// Predictor predicts load values. Implementations are consulted only for
// missing loads, then trained with the architectural value.
type Predictor interface {
	// Lookup predicts the value for the missing load in. It returns
	// predicted=false when the predictor declines (NoPredict).
	Lookup(in *isa.Inst) (value uint64, predicted bool)
	// Train records the architectural value of the missing load.
	Train(in *isa.Inst)
}

// Observe performs one Lookup+Train round and classifies the outcome.
func Observe(p Predictor, in *isa.Inst) Outcome {
	v, ok := p.Lookup(in)
	p.Train(in)
	switch {
	case !ok:
		return NoPredict
	case v == in.Value:
		return Correct
	default:
		return Wrong
	}
}

// LastValue is a PC-indexed, tagged last-value predictor with 2-bit
// confidence: an entry predicts only once its value has repeated, and
// misses drop the confidence back to zero. Confidence is what produces the
// large no-predict fractions of Table 6 — sites with unpredictable values
// (pointer chases, hashes) quickly silence themselves instead of
// mispredicting forever.
type LastValue struct {
	mask   uint64
	tags   []uint64 // PC+1; 0 = invalid
	values []uint64
	conf   []uint8
	trains uint64
}

// confPredict is the confidence threshold at which an entry predicts.
const confPredict = 2

// NewLastValue builds a last-value predictor with the given entry count
// (power of two; the paper uses 16K). It panics on invalid sizes.
func NewLastValue(entries int) *LastValue {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("vpred: entries must be a positive power of two")
	}
	return &LastValue{
		mask:   uint64(entries - 1),
		tags:   make([]uint64, entries),
		values: make([]uint64, entries),
		conf:   make([]uint8, entries),
	}
}

// DefaultEntries is the paper's predictor size.
const DefaultEntries = 16 << 10

func (l *LastValue) slot(pc uint64) uint64 { return (pc >> 2) & l.mask }

// Lookup implements Predictor. It predicts only when the entry is tagged
// with the same PC and confident (a tag mismatch or low confidence is a
// NoPredict, not a wild guess).
func (l *LastValue) Lookup(in *isa.Inst) (uint64, bool) {
	s := l.slot(in.PC)
	if l.tags[s] != in.PC+1 || l.conf[s] < confPredict {
		return 0, false
	}
	return l.values[s], true
}

// Train implements Predictor.
func (l *LastValue) Train(in *isa.Inst) {
	l.trains++
	s := l.slot(in.PC)
	if l.tags[s] == in.PC+1 && l.values[s] == in.Value {
		if l.conf[s] < 3 {
			l.conf[s]++
		}
		return
	}
	l.tags[s] = in.PC + 1
	l.values[s] = in.Value
	l.conf[s] = 0
}

// Entries returns the number of predictor entries.
func (l *LastValue) Entries() int { return len(l.tags) }

// Untrained reports whether the predictor has never been trained — i.e.
// it is still empty and interchangeable with any other freshly
// constructed LastValue of the same size.
func (l *LastValue) Untrained() bool { return l.trains == 0 }

// Perfect is the oracle value predictor used by the limit study (perfVP):
// every missing load's value is predicted correctly.
type Perfect struct{}

// Lookup implements Predictor.
func (Perfect) Lookup(in *isa.Inst) (uint64, bool) { return in.Value, true }

// Train implements Predictor.
func (Perfect) Train(*isa.Inst) {}

// None never predicts; it stands in for "no value prediction".
type None struct{}

// Lookup implements Predictor.
func (None) Lookup(*isa.Inst) (uint64, bool) { return 0, false }

// Train implements Predictor.
func (None) Train(*isa.Inst) {}

// Stats accumulates Table 6 style outcome counts.
type Stats struct {
	Correct   uint64
	Wrong     uint64
	NoPredict uint64
}

// Add records one outcome.
func (s *Stats) Add(o Outcome) {
	switch o {
	case Correct:
		s.Correct++
	case Wrong:
		s.Wrong++
	default:
		s.NoPredict++
	}
}

// Total returns the number of recorded outcomes.
func (s *Stats) Total() uint64 { return s.Correct + s.Wrong + s.NoPredict }

// Fractions returns the (correct, wrong, noPredict) fractions; all zero
// when nothing was recorded.
func (s *Stats) Fractions() (correct, wrong, noPredict float64) {
	n := s.Total()
	if n == 0 {
		return 0, 0, 0
	}
	return float64(s.Correct) / float64(n), float64(s.Wrong) / float64(n), float64(s.NoPredict) / float64(n)
}

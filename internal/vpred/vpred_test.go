package vpred

import (
	"math/rand"
	"testing"

	"mlpsim/internal/isa"
)

func load(pc, value uint64) isa.Inst {
	return isa.Inst{PC: pc, Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 2, Value: value}
}

func TestLastValueColdIsNoPredict(t *testing.T) {
	p := NewLastValue(256)
	in := load(0x1000, 42)
	if o := Observe(p, &in); o != NoPredict {
		t.Fatalf("cold lookup = %v, want NoPredict", o)
	}
}

func TestLastValuePredictsRepeatedValue(t *testing.T) {
	p := NewLastValue(256)
	in := load(0x1000, 42)
	// Confidence gating: the entry predicts only after the value has
	// repeated confPredict times.
	for i := 0; i < 3; i++ {
		if o := Observe(p, &in); o != NoPredict {
			t.Fatalf("observation %d = %v, want NoPredict (building confidence)", i, o)
		}
	}
	if o := Observe(p, &in); o != Correct {
		t.Fatalf("confident repeat = %v, want Correct", o)
	}
	in.Value = 43
	if o := Observe(p, &in); o != Wrong {
		t.Fatalf("changed value = %v, want Wrong", o)
	}
	// The miss reset confidence: the entry declines again until the new
	// value repeats.
	if o := Observe(p, &in); o != NoPredict {
		t.Fatalf("after retrain = %v, want NoPredict", o)
	}
}

func TestLastValueSilencesUnpredictableSite(t *testing.T) {
	p := NewLastValue(256)
	rng := rand.New(rand.NewSource(5))
	var s Stats
	for i := 0; i < 1000; i++ {
		in := load(0x1000, rng.Uint64())
		s.Add(Observe(p, &in))
	}
	_, w, np := s.Fractions()
	if w > 0.01 {
		t.Fatalf("random-valued site wrong fraction %.3f, want ~0 (confidence must silence it)", w)
	}
	if np < 0.99 {
		t.Fatalf("random-valued site no-predict fraction %.3f, want ~1", np)
	}
}

func TestLastValueTagPreventsAliasGuess(t *testing.T) {
	p := NewLastValue(16) // tiny: PCs 0x1000 and 0x1000+16*4 alias
	a := load(0x1000, 7)
	b := load(0x1000+16*4, 9)
	Observe(p, &a)
	// b aliases a's slot but has a different PC: must be NoPredict, then
	// it overwrites the slot.
	if o := Observe(p, &b); o != NoPredict {
		t.Fatalf("aliased cold lookup = %v, want NoPredict (tag mismatch)", o)
	}
	for i := 0; i < 2; i++ {
		Observe(p, &b) // rebuild confidence for b
	}
	if o := Observe(p, &b); o != Correct {
		t.Fatalf("after training b = %v, want Correct", o)
	}
	if o := Observe(p, &a); o != NoPredict {
		t.Fatalf("a after eviction = %v, want NoPredict", o)
	}
}

func TestPerfectAlwaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		in := load(uint64(rng.Intn(1<<20))*4, rng.Uint64())
		if o := Observe(Perfect{}, &in); o != Correct {
			t.Fatalf("perfect predictor outcome = %v", o)
		}
	}
}

func TestNoneNeverPredicts(t *testing.T) {
	in := load(0x1000, 5)
	for i := 0; i < 3; i++ {
		if o := Observe(None{}, &in); o != NoPredict {
			t.Fatalf("None outcome = %v", o)
		}
	}
}

func TestStatsFractions(t *testing.T) {
	var s Stats
	for i := 0; i < 42; i++ {
		s.Add(Correct)
	}
	for i := 0; i < 7; i++ {
		s.Add(Wrong)
	}
	for i := 0; i < 51; i++ {
		s.Add(NoPredict)
	}
	if s.Total() != 100 {
		t.Fatalf("total = %d", s.Total())
	}
	c, w, n := s.Fractions()
	if c != 0.42 || w != 0.07 || n != 0.51 {
		t.Fatalf("fractions = %v %v %v", c, w, n)
	}
	var empty Stats
	if c, w, n := empty.Fractions(); c != 0 || w != 0 || n != 0 {
		t.Fatal("empty fractions must be zero")
	}
}

func TestOutcomeString(t *testing.T) {
	if NoPredict.String() != "No Predict" || Correct.String() != "Correct" || Wrong.String() != "Wrong" {
		t.Fatal("outcome names wrong")
	}
}

func TestNewLastValuePanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", n)
				}
			}()
			NewLastValue(n)
		}()
	}
}

// Property: on a value stream drawn from a per-PC constant distribution,
// the last-value predictor converges to 100% correct after the first
// observation of each PC.
func TestLastValueConstantStreamConverges(t *testing.T) {
	p := NewLastValue(1024)
	rng := rand.New(rand.NewSource(3))
	values := map[uint64]uint64{}
	var s Stats
	for i := 0; i < 5000; i++ {
		pc := uint64(rng.Intn(100)) * 4
		v, ok := values[pc]
		if !ok {
			v = rng.Uint64()
			values[pc] = v
		}
		in := load(pc, v)
		s.Add(Observe(p, &in))
	}
	// Each PC pays three confidence-building no-predicts, then predicts
	// correctly forever: 5000 samples over 100 PCs → ≥ 90% correct.
	c, _, _ := s.Fractions()
	if c < 0.90 {
		t.Fatalf("constant stream correct fraction %.3f, want > 0.90", c)
	}
}
